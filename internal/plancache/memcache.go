package plancache

import (
	"container/list"
	"sync"

	"multitree/internal/collective"
)

// MemStats counts the decoded-plan memory cache's traffic. Monotone
// counters plus the current resident size, all within one MemCache
// lifetime.
type MemStats struct {
	Hits      int64
	Misses    int64
	Evictions int64

	// Bytes and Entries describe the cache's current contents: the sum
	// of the resident costs (Schedule.MemBytes) of the cached plans and
	// how many plans are held.
	Bytes   int64
	Entries int64
}

// MemCache is an in-process LRU of decoded schedules, keyed by the same
// content address as the on-disk Cache. It sits above the disk tier: a
// memory hit skips the file open, the section reads, the varint decode,
// and the hash verification entirely — the plan was verified when it
// entered the process and memory is trusted after that, the same
// contract the planner applies to a schedule it just built.
//
// Cached schedules are shared: Get returns the same *Schedule to every
// caller, so entries are read-only by contract. Every current consumer
// already treats built plans as immutable (simulation, export, and
// analysis all read), matching the shared use.
//
// Safe for concurrent use.
type MemCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	stats    MemStats
}

type memEntry struct {
	key  string
	s    *collective.Schedule
	cost int64
}

// NewMemCache returns a decoded-plan cache holding at most maxBytes of
// materialized schedules (Schedule.MemBytes costs). maxBytes <= 0
// disables the cache: Get always misses and Put is a no-op, so callers
// can thread one handle unconditionally.
func NewMemCache(maxBytes int64) *MemCache {
	return &MemCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached schedule for key, refreshing its LRU position.
// The returned schedule is shared — treat it as read-only.
func (m *MemCache) Get(key string) (*collective.Schedule, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		m.stats.Misses++
		return nil, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).s, true
}

// Put caches s under key, evicting least-recently-used plans until the
// byte cap holds. A plan too large to ever fit is skipped outright
// rather than flushing the whole cache for a single entry that would
// itself be evicted by the next Put. Re-putting an existing key
// refreshes the entry (the schedule for a content address is unique, so
// the bytes are interchangeable).
func (m *MemCache) Put(key string, s *collective.Schedule) {
	if m == nil || m.maxBytes <= 0 || s == nil {
		return
	}
	cost := s.MemBytes()
	if cost > m.maxBytes {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += cost - e.cost
		e.s, e.cost = s, cost
		m.ll.MoveToFront(el)
	} else {
		m.entries[key] = m.ll.PushFront(&memEntry{key: key, s: s, cost: cost})
		m.bytes += cost
	}
	for m.bytes > m.maxBytes {
		el := m.ll.Back()
		if el == nil {
			break
		}
		e := m.ll.Remove(el).(*memEntry)
		delete(m.entries, e.key)
		m.bytes -= e.cost
		m.stats.Evictions++
	}
	m.stats.Bytes = m.bytes
	m.stats.Entries = int64(len(m.entries))
}

// Stats returns a snapshot of the cache's counters and current size.
func (m *MemCache) Stats() MemStats {
	if m == nil {
		return MemStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Bytes = m.bytes
	st.Entries = int64(len(m.entries))
	return st
}
