package plancache_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all"
	"multitree/internal/collective"
	"multitree/internal/plancache"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func build(t *testing.T, topo *topology.Topology, elems int) *collective.Schedule {
	t.Helper()
	s, err := algorithms.Build(topo, "multitree", elems, algorithms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip pins the cache's core contract: a stored schedule loads
// back with an IR encoding byte-identical to the freshly built one.
func TestRoundTrip(t *testing.T) {
	c, err := plancache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	key := plancache.Key(topo, "multitree", 1024, 0)

	if _, _, ok := c.Get(key, topo); ok {
		t.Fatal("hit on an empty cache")
	}
	if _, err := c.Put(key, s); err != nil {
		t.Fatal(err)
	}
	got, _, ok := c.Get(key, topo)
	if !ok {
		t.Fatal("miss after Put")
	}
	var want, have bytes.Buffer
	if err := collective.Export(&want, s); err != nil {
		t.Fatal(err)
	}
	if err := collective.Export(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("cached schedule's IR differs from the built schedule's")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, nonzero bytes", st)
	}
}

// TestKeySensitivity: every schedule-shaping input must move the key;
// planner-speed knobs must not exist in the signature at all.
func TestKeySensitivity(t *testing.T) {
	torus := topology.Torus(4, 4, cfg())
	base := plancache.Key(torus, "multitree", 1024, 0)
	for name, other := range map[string]string{
		"topology":  plancache.Key(topology.Mesh(4, 4, cfg()), "multitree", 1024, 0),
		"algorithm": plancache.Key(torus, "ring", 1024, 0),
		"elems":     plancache.Key(torus, "multitree", 2048, 0),
		"chunks":    plancache.Key(torus, "multitree", 1024, 2),
	} {
		if other == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if plancache.Key(torus, "multitree", 1024, 0) != base {
		t.Error("key is not deterministic")
	}
}

// TestCorruptEntryFallsBack: a damaged entry is deleted, logged, and
// reported as a miss.
func TestCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := plancache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	c.Log = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	key := plancache.Key(topo, "multitree", 1024, 0)
	if _, err := c.Put(key, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".plan")
	if err := os.WriteFile(path, []byte("MTIR\x01mangled garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "discarding invalid entry") {
		t.Fatalf("warnings = %q, want one discard warning", warnings)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted")
	}
	// The slot is clean again: a re-store round-trips.
	if _, err := c.Put(key, s); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); !ok {
		t.Fatal("miss after re-store")
	}
}

// TestWrongTopologyMisses: an entry keyed for one fabric never loads
// onto another (ImportBinaryInto's fingerprint check), even if probed with a
// mismatched key.
func TestWrongTopologyMisses(t *testing.T) {
	c, err := plancache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	torus := topology.Torus(4, 4, cfg())
	mesh := topology.Mesh(4, 4, cfg())
	key := plancache.Key(torus, "multitree", 1024, 0)
	if _, err := c.Put(key, build(t, torus, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, mesh); ok {
		t.Fatal("torus entry loaded onto a mesh")
	}
}

// TestEviction: the size cap holds by deleting the least recently used
// entries, sparing the entry just written.
func TestEviction(t *testing.T) {
	dir := t.TempDir()
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	var one bytes.Buffer
	if err := collective.ExportBinary(&one, s); err != nil {
		t.Fatal(err)
	}
	// Cap to two entries' worth.
	c, err := plancache.Open(dir, int64(one.Len())*2+16)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		plancache.Key(topo, "multitree", 1024, 0),
		plancache.Key(topo, "multitree", 1024, 1),
		plancache.Key(topo, "multitree", 1024, 2),
	}
	for _, k := range keys {
		if _, err := c.Put(k, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Get(keys[2], topo); !ok {
		t.Fatal("just-written entry evicted")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("%d entries left, want 2", len(left))
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestOwnWriteSurvivesTinyCap: a cap smaller than a single entry never
// deletes the entry the store just wrote — the caller is about to load
// it — though the next store reclaims the space.
func TestOwnWriteSurvivesTinyCap(t *testing.T) {
	dir := t.TempDir()
	c, err := plancache.Open(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	k1 := plancache.Key(topo, "multitree", 1024, 0)
	k2 := plancache.Key(topo, "multitree", 1024, 1)
	if _, err := c.Put(k1, s); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k1, topo); !ok {
		t.Fatal("store evicted its own entry under a tiny cap")
	}
	if _, err := c.Put(k2, s); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k2, topo); !ok {
		t.Fatal("second store evicted its own entry")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("%d entries left, want only the latest", len(left))
	}
}
