// Package plancache is a content-addressed on-disk cache of built
// schedules. Planning a 1024-node fabric costs seconds and a 4096-node
// one minutes, but the result is a pure function of (topology, algorithm,
// size, build options) — so, like TTO's pre-built MultiTree trees and
// SCCL's synthesized-algorithm interchange files, the plan is worth
// keeping. Entries are the versioned binary schedule IR of
// internal/collective/binary.go — the compact rendering built for this
// hot path (a 1024-node plan loads ~20x faster than from the JSON
// interchange IR, which stays the format for -export files) — one file
// per key:
//
//	<dir>/<sha256 of the canonical key material>.plan
//
// Loads stream through collective.ImportBinaryIntoOpts. A current-version
// entry carries the exporter's validation summary and content hash, so a
// hit is verified in O(bytes) — fingerprint match, summary cross-checks,
// sha256 over the stream — instead of re-running the full DAG/path
// validation over millions of transfers; Cache.VerifyFull restores the
// full pass, and legacy (previous-version) entries always get it. Either
// way a corrupted, tampered, or stale entry is deleted, logged, and
// reported as a miss — never an error — so one bad file costs one
// rebuild. Stores write to a temp file and rename, so concurrent writers
// (a parallel sweep planning several sizes) and crashes can never leave
// a half-written entry behind. An optional size cap evicts
// least-recently-used entries (hits refresh an entry's mtime).
package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// KeyVersion versions the key material. Bump it when the canonical
// string changes meaning, so stale entries become unreachable instead of
// wrongly shared.
const KeyVersion = "plancache/v1"

// Stats counts the cache's traffic. Monotone within one Cache lifetime.
type Stats struct {
	Hits         int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
	Evictions    int64

	// SummaryLoads counts hits accepted on the entry's embedded
	// validation summary + content hash; FullLoads counts hits that ran
	// the complete ValidateStrict pass (legacy-version entries, or
	// VerifyFull). SummaryLoads + FullLoads == Hits.
	SummaryLoads int64
	FullLoads    int64
}

// Cache is an open plan-cache directory. Safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	// VerifyFull makes every hit re-run the complete schedule validation
	// pass instead of trusting the entry's store-time summary — the
	// -verify-plan escape hatch. Set before use; not synchronized.
	VerifyFull bool

	// Log, when non-nil, receives warnings about discarded entries and
	// failed stores (log.Printf-shaped). The cache never fails a build:
	// every fault degrades to a miss, and Log is how the degradation
	// stays visible.
	Log func(format string, args ...any)

	mu       sync.Mutex
	stats    Stats
	inflight map[string]int // keys with a Put in progress, spared from eviction

	// evictMu serializes eviction scans: concurrent Puts racing through
	// evict would each total a directory the other is shrinking and
	// delete more than the cap requires.
	evictMu sync.Mutex
}

// Open creates dir if needed and returns the cache over it. maxBytes <= 0
// means uncapped; otherwise stores evict least-recently-used entries
// until the directory fits.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("plancache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	return &Cache{dir: dir, maxBytes: maxBytes, inflight: make(map[string]int)}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Key derives the content address for one build request: the topology's
// structural sha256 fingerprint, the algorithm name, the element count,
// and every option that shapes the schedule (chunks). Options that only
// affect how fast the planner runs — worker counts, observers — must not
// be included: they do not change the bytes built.
func Key(topo *topology.Topology, algorithm string, elems, chunks int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nir=%d\ntopology=%s\nalgorithm=%s\nelems=%d\nchunks=%d\n",
		KeyVersion, collective.BinaryIRVersion, collective.TopologyFingerprint(topo), algorithm, elems, chunks)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".plan")
}

// EntryPath returns the on-disk path of key's entry and whether the
// entry currently exists. Entries are content-addressed, written
// atomically, and hold the exporter's exact ExportBinary bytes — so a
// caller that just built or loaded the keyed schedule may stream-copy
// the file in place of re-encoding the identical IR.
func (c *Cache) EntryPath(key string) (string, bool) {
	p := c.path(key)
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

func (c *Cache) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Get loads the entry for key onto topo, returning the schedule and the
// IR bytes read. ok = false is a miss, never an error: the entry was
// absent, unreadable, or failed validation; invalid entries are deleted
// and logged so one corrupt file costs one rebuild, not every future
// run. Equivalent to GetObserved with a nil observer.
func (c *Cache) Get(key string, topo *topology.Topology) (s *collective.Schedule, bytesRead int64, ok bool) {
	return c.GetObserved(key, topo, nil)
}

// GetObserved is Get with planner-phase observation: the entry's
// validation work (summary check or full pass) reports to o as the
// validate phase. Equivalent to GetOpts with only Observer set.
func (c *Cache) GetObserved(key string, topo *topology.Topology, o obs.PlanObserver) (s *collective.Schedule, bytesRead int64, ok bool) {
	return c.GetOpts(key, topo, GetOptions{Observer: o})
}

// GetOptions tunes one cache load. The zero value is a plain
// single-threaded load.
type GetOptions struct {
	// Observer receives the load's planner phases (decode, validate).
	Observer obs.PlanObserver

	// Workers bounds the decode fan-out for current-version entries,
	// exactly as collective.BinaryImportOptions.Workers: sections of the
	// entry decode concurrently on up to Workers goroutines, and the
	// materialized schedule is byte-identical at any count. <= 1 decodes
	// sequentially; legacy entry versions ignore it.
	Workers int
}

// GetOpts is Get with per-load options. The entry streams from disk
// through a bounded buffer — or, for current-version entries with
// Workers > 1, is read section-by-section in parallel; nothing
// materializes the whole file.
func (c *Cache) GetOpts(key string, topo *topology.Topology, opts GetOptions) (s *collective.Schedule, bytesRead int64, ok bool) {
	f, err := os.Open(c.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.logf("plancache: discarding unreadable entry %s: %v", key, err)
			os.Remove(c.path(key))
		}
		c.count(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	defer f.Close()
	var size int64
	if info, err := f.Stat(); err == nil {
		size = info.Size()
	}
	s, li, err := collective.ImportBinaryIntoOpts(f, topo, collective.BinaryImportOptions{
		VerifyFull: c.VerifyFull,
		SizeHint:   size,
		Observer:   opts.Observer,
		Workers:    opts.Workers,
	})
	if err != nil {
		c.logf("plancache: discarding invalid entry %s: %v (rebuilding)", key, err)
		os.Remove(c.path(key))
		c.count(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	// A hit is a use: refresh the mtime so LRU eviction spares it. A
	// failed refresh (read-only cache dir) must not stay silent — it
	// quietly degrades LRU into evict-hottest, since the entries being
	// hit keep their stale mtimes.
	now := time.Now()
	if err := os.Chtimes(c.path(key), now, now); err != nil {
		c.logf("plancache: cannot refresh mtime of %s: %v (LRU may evict hot entries)", key, err)
	}
	c.count(func(st *Stats) {
		st.Hits++
		st.BytesRead += size
		if li.Validation == "summary" {
			st.SummaryLoads++
		} else {
			st.FullLoads++
		}
	})
	return s, size, true
}

// Put stores the schedule under key, atomically (temp file + rename),
// then enforces the size cap; it returns the IR bytes written. The IR
// streams straight into the temp file with the content hash computed as
// the bytes go by (ExportBinary's seekable path) — one pass over the
// entry instead of encode, hash, write. Failures are logged and
// reported; the caller already holds the built schedule, so nothing is
// lost.
func (c *Cache) Put(key string, s *collective.Schedule) (int64, error) {
	c.mu.Lock()
	c.inflight[key]++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.inflight[key]--; c.inflight[key] == 0 {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
	}()
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		c.logf("plancache: not storing %s: %v", key, err)
		return 0, err
	}
	err = collective.ExportBinary(tmp, s)
	var n int64
	if err == nil {
		n, err = tmp.Seek(0, io.SeekEnd)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), c.path(key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.logf("plancache: not storing %s: %v", key, err)
		return 0, err
	}
	c.count(func(st *Stats) { st.BytesWritten += n })
	c.evict(key)
	return n, nil
}

// evict deletes least-recently-used entries until the directory fits the
// cap. It never touches the just-written key, nor any key with a Put
// still in flight — two concurrent Puts under a tight cap must not evict
// each other's fresh entries before their writers return. Scans are
// serialized, and the LRU order breaks equal-mtime ties by name, so
// eviction order is deterministic on filesystems with coarse timestamps.
func (c *Cache) evict(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	spared := map[string]bool{keep + ".plan": true}
	c.mu.Lock()
	for k := range c.inflight {
		spared[k+".plan"] = true
	}
	c.mu.Unlock()
	type entry struct {
		name  string
		size  int64
		mtime int64
	}
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	var entries []entry
	var total int64
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".plan" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		entries = append(entries, entry{de.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].name < entries[j].name
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			return
		}
		if spared[e.name] {
			continue
		}
		if os.Remove(filepath.Join(c.dir, e.name)) == nil {
			total -= e.size
			c.count(func(st *Stats) { st.Evictions++ })
		}
	}
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
