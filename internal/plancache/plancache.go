// Package plancache is a content-addressed on-disk cache of built
// schedules. Planning a 1024-node fabric costs seconds and a 4096-node
// one minutes, but the result is a pure function of (topology, algorithm,
// size, build options) — so, like TTO's pre-built MultiTree trees and
// SCCL's synthesized-algorithm interchange files, the plan is worth
// keeping. Entries are the versioned binary schedule IR of
// internal/collective/binary.go — the compact rendering built for this
// hot path (a 1024-node plan loads ~20x faster than from the JSON
// interchange IR, which stays the format for -export files) — one file
// per key:
//
//	<dir>/<sha256 of the canonical key material>.plan
//
// Loads stream through collective.ImportBinaryIntoOpts. A current-version
// entry carries the exporter's validation summary and content hash, so a
// hit is verified in O(bytes) — fingerprint match, summary cross-checks,
// sha256 over the stream — instead of re-running the full DAG/path
// validation over millions of transfers; Cache.VerifyFull restores the
// full pass, and legacy (previous-version) entries always get it. Either
// way a corrupted, tampered, or stale entry is deleted, logged, and
// reported as a miss — never an error — so one bad file costs one
// rebuild. Stores write to a temp file and rename, so concurrent writers
// (a parallel sweep planning several sizes) and crashes can never leave
// a half-written entry behind. An optional size cap evicts
// least-recently-used entries (hits refresh an entry's mtime).
package plancache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// KeyVersion versions the key material. Bump it when the canonical
// string changes meaning, so stale entries become unreachable instead of
// wrongly shared.
const KeyVersion = "plancache/v1"

// Stats counts the cache's traffic. Monotone within one Cache lifetime.
type Stats struct {
	Hits         int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
	Evictions    int64

	// SummaryLoads counts hits accepted on the entry's embedded
	// validation summary + content hash; FullLoads counts hits that ran
	// the complete ValidateStrict pass (legacy-version entries, or
	// VerifyFull). SummaryLoads + FullLoads == Hits.
	SummaryLoads int64
	FullLoads    int64
}

// Cache is an open plan-cache directory. Safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	// VerifyFull makes every hit re-run the complete schedule validation
	// pass instead of trusting the entry's store-time summary — the
	// -verify-plan escape hatch. Set before use; not synchronized.
	VerifyFull bool

	// Log, when non-nil, receives warnings about discarded entries and
	// failed stores (log.Printf-shaped). The cache never fails a build:
	// every fault degrades to a miss, and Log is how the degradation
	// stays visible.
	Log func(format string, args ...any)

	mu    sync.Mutex
	stats Stats
}

// Open creates dir if needed and returns the cache over it. maxBytes <= 0
// means uncapped; otherwise stores evict least-recently-used entries
// until the directory fits.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("plancache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	return &Cache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Key derives the content address for one build request: the topology's
// structural sha256 fingerprint, the algorithm name, the element count,
// and every option that shapes the schedule (chunks). Options that only
// affect how fast the planner runs — worker counts, observers — must not
// be included: they do not change the bytes built.
func Key(topo *topology.Topology, algorithm string, elems, chunks int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nir=%d\ntopology=%s\nalgorithm=%s\nelems=%d\nchunks=%d\n",
		KeyVersion, collective.BinaryIRVersion, collective.TopologyFingerprint(topo), algorithm, elems, chunks)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".plan")
}

func (c *Cache) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Get loads the entry for key onto topo, returning the schedule and the
// IR bytes read. ok = false is a miss, never an error: the entry was
// absent, unreadable, or failed validation; invalid entries are deleted
// and logged so one corrupt file costs one rebuild, not every future
// run. Equivalent to GetObserved with a nil observer.
func (c *Cache) Get(key string, topo *topology.Topology) (s *collective.Schedule, bytesRead int64, ok bool) {
	return c.GetObserved(key, topo, nil)
}

// GetObserved is Get with planner-phase observation: the entry's
// validation work (summary check or full pass) reports to o as the
// validate phase. The entry streams from disk through a bounded buffer;
// nothing materializes the whole file.
func (c *Cache) GetObserved(key string, topo *topology.Topology, o obs.PlanObserver) (s *collective.Schedule, bytesRead int64, ok bool) {
	f, err := os.Open(c.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.logf("plancache: discarding unreadable entry %s: %v", key, err)
			os.Remove(c.path(key))
		}
		c.count(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	defer f.Close()
	var size int64
	if info, err := f.Stat(); err == nil {
		size = info.Size()
	}
	s, li, err := collective.ImportBinaryIntoOpts(f, topo, collective.BinaryImportOptions{
		VerifyFull: c.VerifyFull,
		SizeHint:   size,
		Observer:   o,
	})
	if err != nil {
		c.logf("plancache: discarding invalid entry %s: %v (rebuilding)", key, err)
		os.Remove(c.path(key))
		c.count(func(s *Stats) { s.Misses++ })
		return nil, 0, false
	}
	// A hit is a use: refresh the mtime so LRU eviction spares it.
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
	c.count(func(st *Stats) {
		st.Hits++
		st.BytesRead += size
		if li.Validation == "summary" {
			st.SummaryLoads++
		} else {
			st.FullLoads++
		}
	})
	return s, size, true
}

// countingWriter tracks bytes handed to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Put stores the schedule under key, atomically (temp file + rename),
// then enforces the size cap; it returns the IR bytes written. The IR
// streams straight to the temp file through a buffered writer. Failures
// are logged and reported; the caller already holds the built schedule,
// so nothing is lost.
func (c *Cache) Put(key string, s *collective.Schedule) (int64, error) {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		c.logf("plancache: not storing %s: %v", key, err)
		return 0, err
	}
	cw := &countingWriter{w: tmp}
	bw := bufio.NewWriterSize(cw, 1<<18)
	err = collective.ExportBinary(bw, s)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), c.path(key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.logf("plancache: not storing %s: %v", key, err)
		return 0, err
	}
	c.count(func(st *Stats) { st.BytesWritten += cw.n })
	c.evict(key)
	return cw.n, nil
}

// evict deletes least-recently-used entries until the directory fits the
// cap, never touching the just-written key.
func (c *Cache) evict(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	type entry struct {
		name  string
		size  int64
		mtime int64
	}
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	var entries []entry
	var total int64
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".plan" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		entries = append(entries, entry{de.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	for _, e := range entries {
		if total <= c.maxBytes {
			return
		}
		if e.name == keep+".plan" {
			continue
		}
		if os.Remove(filepath.Join(c.dir, e.name)) == nil {
			total -= e.size
			c.count(func(st *Stats) { st.Evictions++ })
		}
	}
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
