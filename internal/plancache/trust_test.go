package plancache_test

// Tests of the trusted-load path: current-version entries are accepted
// on their store-time validation summary + content hash, legacy entries
// and VerifyFull fall back to the full validation pass, and any
// tampering — even tampering that leaves the summary intact — degrades
// to a rebuild, never a wrong schedule.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/plancache"
	"multitree/internal/topology"
)

// TestSummaryValidatedHit: a freshly stored entry loads back on the
// summary path, and the stats say so.
func TestSummaryValidatedHit(t *testing.T) {
	c, err := plancache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Torus(4, 4, cfg())
	key := plancache.Key(topo, "multitree", 1024, 0)
	if _, err := c.Put(key, build(t, topo, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); !ok {
		t.Fatal("miss after Put")
	}
	st := c.Stats()
	if st.SummaryLoads != 1 || st.FullLoads != 0 {
		t.Fatalf("stats = %+v, want the hit summary-validated", st)
	}
}

// TestVerifyFullHit: with VerifyFull set, the same entry takes the full
// validation pass instead.
func TestVerifyFullHit(t *testing.T) {
	c, err := plancache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.VerifyFull = true
	topo := topology.Torus(4, 4, cfg())
	key := plancache.Key(topo, "multitree", 1024, 0)
	if _, err := c.Put(key, build(t, topo, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); !ok {
		t.Fatal("miss after Put")
	}
	st := c.Stats()
	if st.FullLoads != 1 || st.SummaryLoads != 0 {
		t.Fatalf("stats = %+v, want the hit full-validated", st)
	}
}

// TestTamperedEntryRebuilt: flipping one bit of a stored entry's
// transfer section — leaving the header and validation summary intact —
// is caught (by the content hash when the stream still decodes, by the
// decoder otherwise), and the entry degrades to a logged miss plus a
// clean re-store. No byte flip may ever serve as a hit.
func TestTamperedEntryRebuilt(t *testing.T) {
	dir := t.TempDir()
	c, err := plancache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	c.Log = func(format string, args ...any) {
		warnings = append(warnings, format)
	}
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	key := plancache.Key(topo, "multitree", 1024, 0)
	if _, err := c.Put(key, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".plan")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a low bit deep in the transfer section: small varint values
	// stay decodable, so the summary cross-checks pass and only the
	// content hash can notice.
	bad := bytes.Clone(good)
	bad[len(bad)-len(bad)/4] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); ok {
		t.Fatal("tampered entry served as a hit")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "discarding invalid entry") {
		t.Fatalf("warnings = %q, want one discard warning", warnings)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("tampered entry not deleted")
	}
	// The rebuild path: a re-store round-trips and validates as summary.
	if _, err := c.Put(key, s); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key, topo); !ok {
		t.Fatal("miss after re-store")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.SummaryLoads != 1 {
		t.Fatalf("stats = %+v, want 1 tamper miss then 1 summary hit", st)
	}
}

// TestStaleVersionFullValidation: an entry written in the legacy binary
// version (no summary) still loads — through the full validation pass —
// so a cache populated by an older build keeps working after an upgrade
// that accepts the old format.
func TestStaleVersionFullValidation(t *testing.T) {
	dir := t.TempDir()
	c, err := plancache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	key := plancache.Key(topo, "multitree", 1024, 0)
	var v1 bytes.Buffer
	if err := collective.ExportBinaryV1(&v1, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".plan"), v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, ok := c.Get(key, topo)
	if !ok {
		t.Fatal("legacy-version entry did not load")
	}
	st := c.Stats()
	if st.FullLoads != 1 || st.SummaryLoads != 0 {
		t.Fatalf("stats = %+v, want the legacy hit full-validated", st)
	}
	var want, have bytes.Buffer
	if err := collective.Export(&want, s); err != nil {
		t.Fatal(err)
	}
	if err := collective.Export(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("legacy entry's schedule differs from the built one")
	}
}
