package plancache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// plant creates a fake entry of n bytes and stamps its mtime.
func plant(t *testing.T, dir, name string, n int, at time.Time) {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, make([]byte, n), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(p, at, at); err != nil {
		t.Fatal(err)
	}
}

func names(t *testing.T, dir string) []string {
	t.Helper()
	got, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		got[i] = filepath.Base(got[i])
	}
	return got
}

// TestEvictEqualMtimeDeterministic pins the tie-break: entries with
// identical mtimes (coarse filesystem timestamps, parallel sweeps) are
// evicted in name order, not in ReadDir's incidental order.
func TestEvictEqualMtimeDeterministic(t *testing.T) {
	dir := t.TempDir()
	at := time.Now().Add(-time.Hour)
	for _, n := range []string{"c.plan", "a.plan", "b.plan"} {
		plant(t, dir, n, 100, at)
	}
	c := &Cache{dir: dir, maxBytes: 250, inflight: make(map[string]int)}
	c.evict("zz")
	left := names(t, dir)
	if len(left) != 2 || left[0] != "b.plan" || left[1] != "c.plan" {
		t.Fatalf("entries left = %v, want the name-ordered survivors [b.plan c.plan]", left)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestEvictSparesInflight pins the concurrent-store guarantee: a key
// with a Put still in flight is never evicted by another store's cap
// enforcement, even when sparing it leaves the directory over the cap.
func TestEvictSparesInflight(t *testing.T) {
	dir := t.TempDir()
	at := time.Now().Add(-time.Hour)
	plant(t, dir, "a.plan", 100, at)
	plant(t, dir, "b.plan", 100, at.Add(time.Minute))
	plant(t, dir, "c.plan", 100, at.Add(2*time.Minute))
	c := &Cache{dir: dir, maxBytes: 100, inflight: map[string]int{"a": 1}}
	c.evict("c")
	left := names(t, dir)
	if len(left) != 2 || left[0] != "a.plan" || left[1] != "c.plan" {
		t.Fatalf("entries left = %v, want in-flight a.plan and just-written c.plan", left)
	}
}
