package plancache_test

import (
	"sync"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/plancache"
	"multitree/internal/topology"
)

// TestMemCacheHitAndShare: a Put'd plan comes back on Get — the same
// pointer, since the cache's contract is a shared read-only schedule —
// and the counters record the traffic.
func TestMemCacheHitAndShare(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	m := plancache.NewMemCache(s.MemBytes() * 4)
	key := plancache.Key(topo, "multitree", 1024, 0)

	if _, ok := m.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	m.Put(key, s)
	got, ok := m.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got != s {
		t.Fatal("Get returned a different schedule than Put stored")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != s.MemBytes() {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry of %d bytes", st, s.MemBytes())
	}
}

// TestMemCacheEviction: the byte cap holds by evicting least-recently-
// used entries; a Get refreshes recency, so the untouched entry is the
// one that goes.
func TestMemCacheEviction(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	a := build(t, topo, 1024)
	b := build(t, topo, 2048)
	c := build(t, topo, 4096)
	keyA := plancache.Key(topo, "multitree", 1024, 0)
	keyB := plancache.Key(topo, "multitree", 2048, 0)
	keyC := plancache.Key(topo, "multitree", 4096, 0)

	// Room for roughly two of the three plans.
	m := plancache.NewMemCache(a.MemBytes() + b.MemBytes() + c.MemBytes()/2)
	m.Put(keyA, a)
	m.Put(keyB, b)
	if _, ok := m.Get(keyA); !ok { // refresh A: B becomes the LRU victim
		t.Fatal("A missing before any eviction")
	}
	m.Put(keyC, c)
	if _, ok := m.Get(keyB); ok {
		t.Fatal("LRU entry B survived an over-cap Put")
	}
	if _, ok := m.Get(keyA); !ok {
		t.Fatal("recently used A was evicted instead of LRU B")
	}
	if _, ok := m.Get(keyC); !ok {
		t.Fatal("just-stored C was evicted")
	}
	st := m.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want at least one eviction", st)
	}
	if st.Bytes > a.MemBytes()+b.MemBytes()+c.MemBytes()/2 {
		t.Fatalf("resident bytes %d exceed the cap", st.Bytes)
	}
}

// TestMemCacheOversized: a plan larger than the whole cap is skipped
// outright instead of flushing every resident entry for nothing.
func TestMemCacheOversized(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	bigTopo := topology.Torus(8, 8, cfg())
	small := build(t, topo, 1024)
	big := build(t, bigTopo, 8192)
	if big.MemBytes() <= small.MemBytes()+1 {
		t.Fatalf("test plans too close in size: small %d, big %d", small.MemBytes(), big.MemBytes())
	}
	keySmall := plancache.Key(topo, "multitree", 1024, 0)
	keyBig := plancache.Key(bigTopo, "multitree", 8192, 0)

	m := plancache.NewMemCache(small.MemBytes() + 1)
	m.Put(keySmall, small)
	m.Put(keyBig, big)
	if _, ok := m.Get(keyBig); ok {
		t.Fatal("plan bigger than the cap was cached")
	}
	if _, ok := m.Get(keySmall); !ok {
		t.Fatal("resident entry flushed by an oversized Put that could never fit")
	}
}

// TestMemCacheDisabled: cap <= 0 and nil receivers are inert, so
// callers thread one handle unconditionally.
func TestMemCacheDisabled(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s := build(t, topo, 1024)
	key := plancache.Key(topo, "multitree", 1024, 0)
	off := plancache.NewMemCache(0)
	off.Put(key, s)
	if _, ok := off.Get(key); ok {
		t.Fatal("disabled cache served a hit")
	}
	var nilCache *plancache.MemCache
	nilCache.Put(key, s)
	if _, ok := nilCache.Get(key); ok {
		t.Fatal("nil cache served a hit")
	}
	if st := nilCache.Stats(); st != (plancache.MemStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

// TestMemCacheConcurrent hammers Get and Put on overlapping keys from
// many goroutines — the -race backstop for the cache's locking, mirroring
// a parallel sweep whose workers share one in-process cache.
func TestMemCacheConcurrent(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	plans := []*collective.Schedule{
		build(t, topo, 1024),
		build(t, topo, 2048),
		build(t, topo, 4096),
	}
	keys := []string{
		plancache.Key(topo, "multitree", 1024, 0),
		plancache.Key(topo, "multitree", 2048, 0),
		plancache.Key(topo, "multitree", 4096, 0),
	}
	// Tight cap keeps eviction churning under the race detector too.
	m := plancache.NewMemCache(plans[0].MemBytes() + plans[1].MemBytes())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % len(keys)
				if got, ok := m.Get(keys[k]); ok {
					if got != plans[k] {
						t.Errorf("key %d returned the wrong plan", k)
						return
					}
				} else {
					m.Put(keys[k], plans[k])
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatalf("stats = %+v, want traffic", st)
	}
}
