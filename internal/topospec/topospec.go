// Package topospec parses the compact topology names used by the command
// line tools and benchmark harness, e.g. "torus-8x8", "mesh-4x4",
// "fattree-16", "fattree-64", "bigraph-32", "bigraph-64".
package topospec

import (
	"fmt"
	"strconv"
	"strings"

	"multitree/internal/topology"
)

// Kinds returns the recognized spec shapes in display order, for CLI
// usage strings and unknown-kind errors.
func Kinds() []string {
	return []string{
		"torus-<nx>x<ny>",
		"mesh-<nx>x<ny>",
		"torus3d-<nx>x<ny>x<nz>",
		"mesh3d-<nx>x<ny>x<nz>",
		"dragonfly-<groups>x<routers>x<nodes>",
		"fattree-<n>",
		"bigraph-<n>",
	}
}

// Usage is the one-line form of Kinds, e.g. for flag descriptions.
func Usage() string {
	return strings.Join(Kinds(), ", ")
}

// Parse builds the named topology with Table III link parameters.
func Parse(spec string) (*topology.Topology, error) {
	cfg := topology.DefaultLinkConfig()
	kind, arg, ok := strings.Cut(spec, "-")
	if !ok {
		return nil, fmt.Errorf("topospec: %q is not <kind>-<size> (known kinds: %s)", spec, Usage())
	}
	switch kind {
	case "torus", "mesh":
		xs, ys, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("topospec: %q needs <nx>x<ny>", spec)
		}
		nx, err1 := strconv.Atoi(xs)
		ny, err2 := strconv.Atoi(ys)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("topospec: bad grid size in %q", spec)
		}
		if err := checkDims(spec, nx, ny); err != nil {
			return nil, err
		}
		if kind == "torus" {
			return topology.Torus(nx, ny, cfg), nil
		}
		return topology.Mesh(nx, ny, cfg), nil
	case "torus3d", "mesh3d":
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topospec: %q needs <nx>x<ny>x<nz>", spec)
		}
		var d [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("topospec: bad grid size in %q", spec)
			}
			d[i] = v
		}
		if err := checkDims(spec, d[0], d[1], d[2]); err != nil {
			return nil, err
		}
		if kind == "torus3d" {
			return topology.Torus3D(d[0], d[1], d[2], cfg), nil
		}
		return topology.Mesh3D(d[0], d[1], d[2], cfg), nil
	case "dragonfly":
		// dragonfly-<groups>x<routers>x<nodesPerRouter>
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topospec: %q needs <groups>x<routers>x<nodes>", spec)
		}
		var d [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("topospec: bad dragonfly size in %q", spec)
			}
			d[i] = v
		}
		if err := checkDragonfly(spec, d[0], d[1], d[2]); err != nil {
			return nil, err
		}
		return topology.Dragonfly(d[0], d[1], d[2], cfg), nil
	case "fattree":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topospec: bad fat-tree size in %q", spec)
		}
		if n < 4 {
			return nil, fmt.Errorf("topospec: fat-tree size %d is too small; need at least 4 nodes", n)
		}
		switch n {
		case 16:
			// DGX-2-like: 4 leaves x 4 nodes, 4 spines (§VI-A).
			return topology.FatTree(4, 4, 4, cfg), nil
		case 64:
			// 8-ary 2-level fat tree.
			return topology.FatTree(8, 8, 8, cfg), nil
		default:
			// k-ary 2-level: k leaves of k nodes with k spines.
			k := isqrt(n)
			if k*k != n {
				return nil, fmt.Errorf("topospec: fat-tree size %d is not a square", n)
			}
			return topology.FatTree(k, k, k, cfg), nil
		}
	case "bigraph":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topospec: bad bigraph size in %q", spec)
		}
		// Four nodes per switch as in EFLOPS's 32- and 64-node systems.
		if n < 8 || n%8 != 0 {
			return nil, fmt.Errorf("topospec: bigraph size %d is not a positive multiple of 8", n)
		}
		return topology.BiGraph(n/8, 4, cfg), nil
	}
	return nil, fmt.Errorf("topospec: unknown topology kind %q (known kinds: %s)", kind, Usage())
}

// checkDims rejects degenerate grid shapes before they reach the
// topology constructors, which panic on dimensions below 2.
func checkDims(spec string, dims ...int) error {
	for _, d := range dims {
		if d < 2 {
			return fmt.Errorf("topospec: %q has dimension %d; every grid dimension must be >= 2", spec, d)
		}
	}
	return nil
}

// checkDragonfly mirrors the dragonfly constructor's panic conditions as
// errors: >= 2 groups, enough routers for full global connectivity, and
// at least one node per router.
func checkDragonfly(spec string, groups, routers, nodes int) error {
	if groups < 2 || routers < 1 || nodes < 1 {
		return fmt.Errorf("topospec: %q needs >= 2 groups, >= 1 router and >= 1 node per router", spec)
	}
	if routers < groups-1 {
		return fmt.Errorf("topospec: %q needs routers >= groups-1 for full global connectivity", spec)
	}
	return nil
}

// TorusFor returns the near-square 2D torus with n nodes used by the
// scalability study (Fig. 10): 16 -> 4x4, 32 -> 4x8, 64 -> 8x8,
// 128 -> 8x16, 256 -> 16x16.
func TorusFor(n int) (*topology.Topology, error) {
	ny := isqrt(n)
	for ny > 1 && n%ny != 0 {
		ny--
	}
	nx := n / ny
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("topospec: cannot shape %d nodes into a torus", n)
	}
	return topology.Torus(nx, ny, topology.DefaultLinkConfig()), nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
