// Package topospec parses the compact topology names used by the command
// line tools and benchmark harness, e.g. "torus-8x8", "mesh-4x4",
// "fattree-16", "fattree-64", "bigraph-32", "bigraph-64".
package topospec

import (
	"fmt"
	"strconv"
	"strings"

	"multitree/internal/topology"
)

// Parse builds the named topology with Table III link parameters.
func Parse(spec string) (*topology.Topology, error) {
	cfg := topology.DefaultLinkConfig()
	kind, arg, ok := strings.Cut(spec, "-")
	if !ok {
		return nil, fmt.Errorf("topospec: %q is not <kind>-<size>", spec)
	}
	switch kind {
	case "torus", "mesh":
		xs, ys, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("topospec: %q needs <nx>x<ny>", spec)
		}
		nx, err1 := strconv.Atoi(xs)
		ny, err2 := strconv.Atoi(ys)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("topospec: bad grid size in %q", spec)
		}
		if kind == "torus" {
			return topology.Torus(nx, ny, cfg), nil
		}
		return topology.Mesh(nx, ny, cfg), nil
	case "torus3d", "mesh3d":
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topospec: %q needs <nx>x<ny>x<nz>", spec)
		}
		var d [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("topospec: bad grid size in %q", spec)
			}
			d[i] = v
		}
		if kind == "torus3d" {
			return topology.Torus3D(d[0], d[1], d[2], cfg), nil
		}
		return topology.Mesh3D(d[0], d[1], d[2], cfg), nil
	case "dragonfly":
		// dragonfly-<groups>x<routers>x<nodesPerRouter>
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topospec: %q needs <groups>x<routers>x<nodes>", spec)
		}
		var d [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("topospec: bad dragonfly size in %q", spec)
			}
			d[i] = v
		}
		return topology.Dragonfly(d[0], d[1], d[2], cfg), nil
	case "fattree":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topospec: bad fat-tree size in %q", spec)
		}
		switch n {
		case 16:
			// DGX-2-like: 4 leaves x 4 nodes, 4 spines (§VI-A).
			return topology.FatTree(4, 4, 4, cfg), nil
		case 64:
			// 8-ary 2-level fat tree.
			return topology.FatTree(8, 8, 8, cfg), nil
		default:
			// k-ary 2-level: k leaves of k nodes with k spines.
			k := isqrt(n)
			if k*k != n {
				return nil, fmt.Errorf("topospec: fat-tree size %d is not a square", n)
			}
			return topology.FatTree(k, k, k, cfg), nil
		}
	case "bigraph":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topospec: bad bigraph size in %q", spec)
		}
		// Four nodes per switch as in EFLOPS's 32- and 64-node systems.
		if n%8 != 0 {
			return nil, fmt.Errorf("topospec: bigraph size %d is not a multiple of 8", n)
		}
		return topology.BiGraph(n/8, 4, cfg), nil
	}
	return nil, fmt.Errorf("topospec: unknown topology kind %q", kind)
}

// TorusFor returns the near-square 2D torus with n nodes used by the
// scalability study (Fig. 10): 16 -> 4x4, 32 -> 4x8, 64 -> 8x8,
// 128 -> 8x16, 256 -> 16x16.
func TorusFor(n int) (*topology.Topology, error) {
	ny := isqrt(n)
	for ny > 1 && n%ny != 0 {
		ny--
	}
	nx := n / ny
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("topospec: cannot shape %d nodes into a torus", n)
	}
	return topology.Torus(nx, ny, topology.DefaultLinkConfig()), nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
