package topospec

import (
	"strings"
	"testing"
)

func TestParseGood(t *testing.T) {
	cases := map[string]struct {
		nodes    int
		switches int
	}{
		"torus-4x4":  {16, 0},
		"torus-8x8":  {64, 0},
		"mesh-4x8":   {32, 0},
		"fattree-16": {16, 8},
		"fattree-64": {64, 16},
		"bigraph-32": {32, 8},
		"bigraph-64": {64, 16},
	}
	for spec, want := range cases {
		topo, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if topo.Nodes() != want.nodes || topo.Switches() != want.switches {
			t.Errorf("Parse(%q) = %d nodes %d switches, want %d/%d",
				spec, topo.Nodes(), topo.Switches(), want.nodes, want.switches)
		}
	}
}

func TestParseBad(t *testing.T) {
	for _, spec := range []string{"", "torus", "torus-4", "ring-8", "mesh-axb", "bigraph-30", "fattree-x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) did not error", spec)
		}
	}
}

func TestParseDegenerateDims(t *testing.T) {
	// Shapes that are syntactically well formed but describe no usable
	// fabric must be rejected before reaching the constructors.
	for _, spec := range []string{
		"torus-0x4", "torus-1x4", "mesh-4x0", "torus--2x4", "torus-1x1",
		"torus3d-0x4x4", "torus3d-1x4x4", "mesh3d-4x-1x4",
		"dragonfly-0x4x2", "dragonfly-4x2x2", // routers < groups-1
		"fattree-0", "fattree-1", "bigraph-0", "bigraph--8",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) did not error", spec)
		}
	}
}

func TestUsageListsEveryKind(t *testing.T) {
	u := Usage()
	for _, kind := range []string{"torus-", "mesh-", "torus3d-", "mesh3d-", "dragonfly-", "fattree-", "bigraph-"} {
		if !strings.Contains(u, kind) {
			t.Errorf("Usage() omits %q: %s", kind, u)
		}
	}
	if len(Kinds()) != 7 {
		t.Errorf("Kinds() has %d entries", len(Kinds()))
	}
	// The unknown-kind error carries the listing so CLI users see the menu.
	_, err := Parse("ring-8")
	if err == nil || !strings.Contains(err.Error(), "torus-<nx>x<ny>") {
		t.Errorf("unknown-kind error should list known kinds, got: %v", err)
	}
}

func TestTorusFor(t *testing.T) {
	shapes := map[int][2]int{
		16:  {4, 4},
		32:  {8, 4},
		64:  {8, 8},
		128: {16, 8},
		256: {16, 16},
	}
	for n, want := range shapes {
		topo, err := TorusFor(n)
		if err != nil {
			t.Fatalf("TorusFor(%d): %v", n, err)
		}
		nx, ny := topo.GridDims()
		if nx*ny != n || (nx != want[0] && nx != want[1]) {
			t.Errorf("TorusFor(%d) = %dx%d", n, nx, ny)
		}
	}
	if _, err := TorusFor(7); err == nil {
		t.Error("TorusFor(7) did not error (prime)")
	}
}

func TestParseExtendedFabrics(t *testing.T) {
	cases := map[string]int{
		"torus3d-4x4x4":   64,
		"mesh3d-2x3x4":    24,
		"dragonfly-4x4x2": 32,
	}
	for spec, nodes := range cases {
		topo, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if topo.Nodes() != nodes {
			t.Errorf("Parse(%q) = %d nodes, want %d", spec, topo.Nodes(), nodes)
		}
	}
	for _, bad := range []string{"torus3d-4x4", "dragonfly-4x4", "mesh3d-axbxc"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) did not error", bad)
		}
	}
}
