package topospec

import "testing"

func TestParseGood(t *testing.T) {
	cases := map[string]struct {
		nodes    int
		switches int
	}{
		"torus-4x4":  {16, 0},
		"torus-8x8":  {64, 0},
		"mesh-4x8":   {32, 0},
		"fattree-16": {16, 8},
		"fattree-64": {64, 16},
		"bigraph-32": {32, 8},
		"bigraph-64": {64, 16},
	}
	for spec, want := range cases {
		topo, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if topo.Nodes() != want.nodes || topo.Switches() != want.switches {
			t.Errorf("Parse(%q) = %d nodes %d switches, want %d/%d",
				spec, topo.Nodes(), topo.Switches(), want.nodes, want.switches)
		}
	}
}

func TestParseBad(t *testing.T) {
	for _, spec := range []string{"", "torus", "torus-4", "ring-8", "mesh-axb", "bigraph-30", "fattree-x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) did not error", spec)
		}
	}
}

func TestTorusFor(t *testing.T) {
	shapes := map[int][2]int{
		16:  {4, 4},
		32:  {8, 4},
		64:  {8, 8},
		128: {16, 8},
		256: {16, 16},
	}
	for n, want := range shapes {
		topo, err := TorusFor(n)
		if err != nil {
			t.Fatalf("TorusFor(%d): %v", n, err)
		}
		nx, ny := topo.GridDims()
		if nx*ny != n || (nx != want[0] && nx != want[1]) {
			t.Errorf("TorusFor(%d) = %dx%d", n, nx, ny)
		}
	}
	if _, err := TorusFor(7); err == nil {
		t.Error("TorusFor(7) did not error (prime)")
	}
}

func TestParseExtendedFabrics(t *testing.T) {
	cases := map[string]int{
		"torus3d-4x4x4":   64,
		"mesh3d-2x3x4":    24,
		"dragonfly-4x4x2": 32,
	}
	for spec, nodes := range cases {
		topo, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if topo.Nodes() != nodes {
			t.Errorf("Parse(%q) = %d nodes, want %d", spec, topo.Nodes(), nodes)
		}
	}
	for _, bad := range []string{"torus3d-4x4", "dragonfly-4x4", "mesh3d-axbxc"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) did not error", bad)
		}
	}
}
