package multitree

import (
	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all" // register the built-in algorithms
	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Algorithm names an all-reduce algorithm.
type Algorithm string

// The implemented all-reduce algorithms: the paper's MultiTree
// contribution and the four baselines of its evaluation.
const (
	Ring      Algorithm = "ring"
	DBTree    Algorithm = "dbtree"
	Ring2D    Algorithm = "2d-ring"
	HDRM      Algorithm = "hdrm"
	MultiTree Algorithm = "multitree"
)

// Algorithms lists all supported algorithms, in the central registry's
// plotting order.
func Algorithms() []Algorithm {
	names := algorithms.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// LinkConfig sets the physical link parameters; the zero value selects the
// paper's Table III configuration (16 GB/s, 150 ns).
type LinkConfig struct {
	BandwidthGBps float64
	LatencyNs     int
}

func (lc LinkConfig) internal() topology.LinkConfig {
	cfg := topology.DefaultLinkConfig()
	if lc.BandwidthGBps > 0 {
		cfg.Bandwidth = lc.BandwidthGBps // 1 GB/s = 1 B/cycle at 1 GHz
	}
	if lc.LatencyNs > 0 {
		cfg.Latency = simTime(lc.LatencyNs)
	}
	return cfg
}

// Topology is an interconnection network instance.
type Topology struct {
	t *topology.Topology
}

// NewTorus returns an nx-by-ny 2D Torus with Table III links.
func NewTorus(nx, ny int) *Topology { return NewTorusLinks(nx, ny, LinkConfig{}) }

// NewTorusLinks returns an nx-by-ny 2D Torus with custom links.
func NewTorusLinks(nx, ny int, lc LinkConfig) *Topology {
	return &Topology{t: topology.Torus(nx, ny, lc.internal())}
}

// NewMesh returns an nx-by-ny 2D Mesh with Table III links.
func NewMesh(nx, ny int) *Topology { return NewMeshLinks(nx, ny, LinkConfig{}) }

// NewMeshLinks returns an nx-by-ny 2D Mesh with custom links.
func NewMeshLinks(nx, ny int, lc LinkConfig) *Topology {
	return &Topology{t: topology.Mesh(nx, ny, lc.internal())}
}

// NewFatTree returns a two-level fat tree: leaves leaf switches of
// nodesPerLeaf nodes each, fully connected to spines root switches.
func NewFatTree(leaves, nodesPerLeaf, spines int) *Topology {
	return &Topology{t: topology.FatTree(leaves, nodesPerLeaf, spines, topology.DefaultLinkConfig())}
}

// NewBiGraph returns an EFLOPS BiGraph: two layers of perLayer switches,
// fully connected between layers, nodesPerSwitch nodes each.
func NewBiGraph(perLayer, nodesPerSwitch int) *Topology {
	return &Topology{t: topology.BiGraph(perLayer, nodesPerSwitch, topology.DefaultLinkConfig())}
}

// NewTorus3D returns an nx-by-ny-by-nz 3D Torus (newer TPU-pod-style
// fabric); MultiTree schedules it with no topology-specific code.
func NewTorus3D(nx, ny, nz int) *Topology {
	return &Topology{t: topology.Torus3D(nx, ny, nz, topology.DefaultLinkConfig())}
}

// NewMesh3D returns an nx-by-ny-by-nz 3D Mesh.
func NewMesh3D(nx, ny, nz int) *Topology {
	return &Topology{t: topology.Mesh3D(nx, ny, nz, topology.DefaultLinkConfig())}
}

// NewDragonfly returns a dragonfly fabric: groups completely connected
// internally, one global channel per group pair, nodesPerRouter
// accelerators per router.
func NewDragonfly(groups, routersPerGroup, nodesPerRouter int) *Topology {
	return &Topology{t: topology.Dragonfly(groups, routersPerGroup, nodesPerRouter, topology.DefaultLinkConfig())}
}

// Name returns the topology's name, e.g. "torus-8x8".
func (t *Topology) Name() string { return t.t.Name() }

// Nodes returns the number of accelerators.
func (t *Topology) Nodes() int { return t.t.Nodes() }

// Supports reports whether an algorithm applies to this topology, per the
// central registry's applicability predicates: 2D-Ring needs a grid, HDRM
// needs a power-of-two node count, the rest need at least two nodes.
func (t *Topology) Supports(alg Algorithm) bool {
	spec, ok := algorithms.Lookup(string(alg))
	return ok && spec.Supports(t.t)
}

// Schedule is a complete all-reduce communication plan, ready to simulate
// or to execute on real data.
type Schedule struct {
	s *collective.Schedule
}

// BuildSchedule constructs the all-reduce schedule of an algorithm for
// dataBytes of gradient (rounded down to whole 4-byte elements) on a
// topology. BuildScheduleProfiled additionally records where the
// planner spent its time.
func BuildSchedule(t *Topology, alg Algorithm, dataBytes int64) (*Schedule, error) {
	return BuildScheduleProfiled(t, alg, dataBytes, nil)
}

// Algorithm returns the schedule's algorithm name.
func (s *Schedule) Algorithm() Algorithm { return Algorithm(s.s.Algorithm) }

// Steps returns the number of algorithmic time steps.
func (s *Schedule) Steps() int { return s.s.Steps }

// Transfers returns the number of point-to-point messages.
func (s *Schedule) Transfers() int { return len(s.s.Transfers) }

// ContentionFree reports whether no two same-step transfers share a
// physical link.
func (s *Schedule) ContentionFree() bool {
	return collective.Analyze(s.s).ContentionFree()
}

// BandwidthOverhead returns communicated bytes relative to the
// bandwidth-optimal 2(N-1)/N per node (1.0 = optimal; 2D-Ring approaches
// 2.0).
func (s *Schedule) BandwidthOverhead() float64 {
	return collective.Analyze(s.s).BandwidthOverhead()
}

// Verify executes the schedule's reduction semantics on synthetic vectors
// and confirms every node ends with the global sum.
func (s *Schedule) Verify() error {
	elems := s.s.Elems
	if elems > 4096 {
		// Verification is semantic, not size-dependent; cap the vector so
		// Verify stays cheap on multi-GiB schedules. Imported schedules may
		// not be rebuildable (unknown algorithm name); those verify at full
		// size below.
		if small, err := rebuild(s.s, 4096); err == nil {
			return collective.VerifyAllReduce(small, collective.RampInputs(small.Topo.Nodes(), small.Elems))
		}
	}
	return collective.VerifyAllReduce(s.s, collective.RampInputs(s.s.Topo.Nodes(), elems))
}

// rebuild reconstructs the same algorithm's schedule at a smaller size.
func rebuild(s *collective.Schedule, elems int) (*collective.Schedule, error) {
	t := &Topology{t: s.Topo}
	ns, err := BuildSchedule(t, Algorithm(s.Algorithm), int64(elems)*collective.WordSize)
	if err != nil {
		return nil, err
	}
	return ns.s, nil
}

// SimOptions selects the simulation configuration.
type SimOptions struct {
	// MessageBased enables the co-designed big-gradient flow control
	// (§IV-B); off means conventional 256 B packets.
	MessageBased bool

	// PacketLevel selects the packet-granularity engine instead of the
	// fluid flow-level engine. Slower, higher fidelity.
	PacketLevel bool

	// PayloadBytes overrides the packet payload (default 256).
	PayloadBytes int

	// DisableLockstep turns off the NI lockstep injection regulation
	// (§IV-A), used by the lockstep ablation.
	DisableLockstep bool

	// Tracer, when non-nil, receives the typed simulation events of
	// internal/obs (transfer ready/injected/delivered, link-occupancy
	// spans, credit blocks, lockstep step entries). Leave nil — the
	// default — and the simulators pay only a branch per event.
	Tracer obs.Tracer

	// Metrics, when non-nil, streams the same events into per-link
	// utilization histograms, queueing-delay distributions and NI
	// counters (obs.NewMetrics). It composes with Tracer.
	Metrics *obs.Metrics
}

func (o SimOptions) internal() network.Config {
	cfg := network.DefaultConfig()
	cfg.MessageBased = o.MessageBased
	if o.PayloadBytes > 0 {
		cfg.PayloadBytes = o.PayloadBytes
	}
	if o.DisableLockstep {
		cfg.Lockstep = false
		cfg.StepPriority = false
	}
	cfg.Tracer = o.Tracer
	if o.Metrics != nil {
		cfg.Tracer = obs.Tee(cfg.Tracer, o.Metrics)
	}
	return cfg
}

// SimResult reports a simulated all-reduce.
type SimResult struct {
	Cycles        uint64
	BandwidthGBps float64
	PayloadBytes  int64
	WireBytes     int64
}

// Simulate runs the schedule through the selected network engine and
// reports completion time and achieved bandwidth (data size / time).
// Each call builds the engine state from scratch; callers re-simulating
// the same schedule many times (parameter sweeps, what-if studies)
// should build a Simulator once and call its Run repeatedly.
func (s *Schedule) Simulate(opt SimOptions) (SimResult, error) {
	sim, err := s.NewSimulator(opt)
	if err != nil {
		return SimResult{}, err
	}
	return sim.Run()
}

// Simulator is a reusable network simulator for one schedule and one
// simulation configuration. Run may be called repeatedly; the engine
// keeps all backing storage (event heaps, scratch arrays, arenas)
// between runs, so steady-state re-simulation performs no heap
// allocations. Runs are deterministic and cycle-identical to each other
// and to a one-shot Simulate with the same options.
type Simulator struct {
	elems  int
	fluid  *network.FluidSim
	packet *network.PacketSim
}

// NewSimulator validates the options and builds the reusable engine
// state for the schedule: a flow-level FluidSim by default, a
// packet-level PacketSim when opt.PacketLevel is set.
func (s *Schedule) NewSimulator(opt SimOptions) (*Simulator, error) {
	sim := &Simulator{elems: s.s.Elems}
	cfg := opt.internal()
	var err error
	if opt.PacketLevel {
		sim.packet, err = network.NewPacketSim(s.s, cfg)
	} else {
		sim.fluid, err = network.NewFluidSim(s.s, cfg)
	}
	if err != nil {
		return nil, err
	}
	return sim, nil
}

// Run simulates the schedule and reports completion time and achieved
// bandwidth (data size / time).
func (sim *Simulator) Run() (SimResult, error) {
	var res *network.Result
	var err error
	if sim.packet != nil {
		res, err = sim.packet.Run()
	} else {
		res, err = sim.fluid.Run()
	}
	if err != nil {
		return SimResult{}, err
	}
	dataBytes := int64(sim.elems) * collective.WordSize
	return SimResult{
		Cycles:        uint64(res.Cycles),
		BandwidthGBps: network.GBps(res.BandwidthBytesPerCycle(dataBytes)),
		PayloadBytes:  res.PayloadBytes,
		WireBytes:     res.WireBytes,
	}, nil
}
